//! Deterministic fault injection for the simulated runtime.
//!
//! Real fleets are hit by transient hardware misbehaviour — a corrupted
//! PCIe transfer, a kernel that wedges until the watchdog kills it, an
//! allocator that momentarily refuses, a device that drops off the bus
//! mid-solve. The serving layer above this simulator claims to survive
//! all of that; this module is how the claim gets *tested* rather than
//! asserted.
//!
//! A [`FaultPlan`] is a seeded schedule description attached to a
//! [`HardwareDescriptor`](crate::HardwareDescriptor); every
//! [`Device`](crate::Device) built from that descriptor carries a
//! [`FaultInjector`] derived from the plan. Injection decisions are a
//! pure hash of `(seed, channel, event counter)` — no clocks, no OS
//! randomness — and every counter advances on the thread that *issues*
//! the event (the driver thread for launches and uploads, the reserving
//! thread for ledger allocations), never inside a parallel kernel body.
//! The same plan therefore produces the **bit-identical fault schedule
//! at any `RAYON_NUM_THREADS`**, which is what lets CI pin a chaos run.
//!
//! Faults are *latched*, not thrown: the simulator records what happened
//! and keeps going, and the execution layer drains the latch after each
//! solve ([`Device::take_fault`](crate::Device::take_fault)) to decide
//! whether the result is servable. That mirrors real GPUs, where a
//! corrupted DMA is detected after the fact (if at all) — here the SVD
//! stack detects it via `SvdOutput::verify` and typed errors.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A seeded, declarative fault schedule.
///
/// Rates are per-event probabilities in `[0, 1]`, evaluated by hashing
/// the event's channel counter against `seed` — so "5% corruption" means
/// a deterministic, reproducible 5% subset of upload events, not a coin
/// flipped at run time. The default plan injects nothing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every injection decision. Two devices with the same
    /// plan (same seed) fault at the same event indices.
    pub seed: u64,
    /// Probability that an upload (host→device transfer) poisons one
    /// element of the destination buffer — simulated bit corruption.
    pub corrupt_rate: f64,
    /// Probability that a kernel launch stalls: its simulated cost is
    /// multiplied by [`stall_factor`](Self::stall_factor) and the launch
    /// is latched as watchdog-killed (the solve's result is discarded).
    pub stall_rate: f64,
    /// Cost multiplier for a stalled launch.
    pub stall_factor: f64,
    /// Probability that a [`MemoryLedger`](crate::MemoryLedger)
    /// reservation transiently fails even within budget.
    pub alloc_fail_rate: f64,
    /// Terminal failure: after this many injector events the device
    /// stops responding — every subsequent event latches
    /// [`FaultKind::Death`] until [`revived`](crate::Device::revive_faults).
    pub death_after: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall_factor: 50.0,
            alloc_fail_rate: 0.0,
            death_after: None,
        }
    }
}

impl FaultPlan {
    /// A no-fault plan with the given seed; set rates with the builder
    /// methods below.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Sets the upload-corruption probability.
    pub fn corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Sets the kernel-stall probability.
    pub fn stall_rate(mut self, rate: f64) -> Self {
        self.stall_rate = rate;
        self
    }

    /// Sets the cost multiplier applied to stalled launches.
    pub fn stall_factor(mut self, factor: f64) -> Self {
        self.stall_factor = factor;
        self
    }

    /// Sets the transient allocation-failure probability.
    pub fn alloc_fail_rate(mut self, rate: f64) -> Self {
        self.alloc_fail_rate = rate;
        self
    }

    /// Kills the device after `events` injector events.
    pub fn death_after(mut self, events: u64) -> Self {
        self.death_after = Some(events);
        self
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.corrupt_rate > 0.0
            || self.stall_rate > 0.0
            || self.alloc_fail_rate > 0.0
            || self.death_after.is_some()
    }
}

/// What kind of fault was injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A ledger reservation was refused transiently (retry may succeed).
    AllocFail,
    /// A launch blew past the watchdog; its output is untrustworthy.
    Stall,
    /// An upload poisoned an element of the destination buffer.
    Corruption,
    /// The device stopped responding — terminal until revived.
    Death,
}

impl FaultKind {
    /// Whether a retry on the same (or another) device can succeed.
    /// Everything but [`Death`](Self::Death) is transient.
    pub fn is_transient(self) -> bool {
        !matches!(self, FaultKind::Death)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::AllocFail => "transient allocation failure",
            FaultKind::Stall => "kernel stall (watchdog)",
            FaultKind::Corruption => "transfer corruption",
            FaultKind::Death => "device death",
        };
        f.write_str(s)
    }
}

/// A fault that poisoned a solve: which device, and what happened.
///
/// Carried by `SvdError::DeviceFault` in `unisvd_core`; the serving
/// layer's retry policy consults [`FaultKind::is_transient`] through it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeviceFault {
    /// Name of the faulting device (its descriptor's `name`).
    pub device: &'static str,
    /// What was injected.
    pub kind: FaultKind,
}

impl std::fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}", self.kind, self.device)
    }
}

impl std::error::Error for DeviceFault {}

/// The injection channel an event was counted on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultChannel {
    /// Kernel launches (stall / death).
    Launch,
    /// Host→device uploads (corruption / death).
    Upload,
    /// Ledger reservations (transient allocation failure).
    Alloc,
}

/// One injected fault, pinned to its exact schedule position — the unit
/// the determinism suite compares across thread counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FaultRecord {
    /// Channel the fault fired on.
    pub channel: FaultChannel,
    /// Zero-based event index *within that channel* at which it fired.
    pub event: u64,
    /// What was injected.
    pub kind: FaultKind,
}

// SplitMix64: a tiny, high-quality 64-bit mixer. Used as a stateless
// hash so injection decisions depend only on (seed, channel, counter).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to `[0, 1)` with 53 bits of precision.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

const SALT_LAUNCH: u64 = 0x4C41_554E_4348;
const SALT_UPLOAD: u64 = 0x5550_4C4F_4144;
const SALT_ALLOC: u64 = 0x0041_4C4C_4F43;

/// Per-device fault state: channel counters, the death latch, and the
/// record of everything injected so far.
///
/// Built automatically by [`Device::new`](crate::Device::new) when the
/// descriptor carries a [`FaultPlan`]; constructed directly only to
/// attach allocation faults to a standalone
/// [`MemoryLedger`](crate::MemoryLedger).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    device: &'static str,
    launches: AtomicU64,
    uploads: AtomicU64,
    allocs: AtomicU64,
    /// Total events across channels; drives `death_after`.
    events: AtomicU64,
    /// Event count at which the device dies (`u64::MAX` = never; reset
    /// to never by [`revive`](Self::revive)).
    death_at: AtomicU64,
    dead: AtomicBool,
    /// Faults since the last [`take`](Self::take) — the per-solve latch.
    latched: Mutex<Vec<FaultKind>>,
    /// Every fault ever injected, in injection order per channel.
    history: Mutex<Vec<FaultRecord>>,
}

impl FaultInjector {
    /// An injector executing `plan`, attributing faults to `device`.
    pub fn new(plan: FaultPlan, device: &'static str) -> Self {
        let death_at = plan.death_after.unwrap_or(u64::MAX);
        FaultInjector {
            plan,
            device,
            launches: AtomicU64::new(0),
            uploads: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            events: AtomicU64::new(0),
            death_at: AtomicU64::new(death_at),
            dead: AtomicBool::new(false),
            latched: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn hit(&self, salt: u64, event: u64, rate: f64) -> bool {
        rate > 0.0
            && unit(splitmix64(
                self.plan.seed ^ splitmix64(salt ^ splitmix64(event)),
            )) < rate
    }

    /// Advances the global event counter and returns `true` if the
    /// device is (now) dead.
    fn advance_death(&self) -> bool {
        let total = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        if total >= self.death_at.load(Ordering::Relaxed) {
            self.dead.store(true, Ordering::Relaxed);
        }
        self.dead.load(Ordering::Relaxed)
    }

    fn latch(&self, channel: FaultChannel, event: u64, kind: FaultKind) {
        self.latched.lock().push(kind);
        self.history.lock().push(FaultRecord {
            channel,
            event,
            kind,
        });
    }

    /// Called once per kernel launch, on the issuing thread. Returns the
    /// injected fault, if any (the caller inflates the launch cost on
    /// [`FaultKind::Stall`]).
    pub fn on_launch(&self) -> Option<FaultKind> {
        let ev = self.launches.fetch_add(1, Ordering::Relaxed);
        if self.advance_death() {
            self.latch(FaultChannel::Launch, ev, FaultKind::Death);
            return Some(FaultKind::Death);
        }
        if self.hit(SALT_LAUNCH, ev, self.plan.stall_rate) {
            self.latch(FaultChannel::Launch, ev, FaultKind::Stall);
            return Some(FaultKind::Stall);
        }
        None
    }

    /// Called once per upload, on the issuing thread. Returns the index
    /// of the element to poison when corruption fires (`len > 0`).
    pub fn on_upload(&self, len: usize) -> Option<usize> {
        let ev = self.uploads.fetch_add(1, Ordering::Relaxed);
        if self.advance_death() {
            self.latch(FaultChannel::Upload, ev, FaultKind::Death);
            return None;
        }
        if len > 0 && self.hit(SALT_UPLOAD, ev, self.plan.corrupt_rate) {
            self.latch(FaultChannel::Upload, ev, FaultKind::Corruption);
            let idx =
                splitmix64(self.plan.seed ^ splitmix64(SALT_UPLOAD ^ splitmix64(!ev))) as usize;
            return Some(idx % len);
        }
        None
    }

    /// Called per ledger reservation attempt. `true` means the
    /// reservation must be refused (nothing is charged). A dead device's
    /// allocator refuses everything.
    pub fn on_alloc(&self) -> bool {
        let ev = self.allocs.fetch_add(1, Ordering::Relaxed);
        if self.advance_death() {
            self.latch(FaultChannel::Alloc, ev, FaultKind::Death);
            return true;
        }
        if self.hit(SALT_ALLOC, ev, self.plan.alloc_fail_rate) {
            self.latch(FaultChannel::Alloc, ev, FaultKind::AllocFail);
            return true;
        }
        false
    }

    /// Drains the per-solve latch; returns the worst fault injected
    /// since the last call ([`FaultKind::Death`] dominates).
    pub fn take(&self) -> Option<DeviceFault> {
        let mut latched = self.latched.lock();
        let worst = latched.iter().copied().max();
        latched.clear();
        worst.map(|kind| DeviceFault {
            device: self.device,
            kind,
        })
    }

    /// Whether the device has died (and has not been revived).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }

    /// Clears the death latch and disables further scheduled death —
    /// the simulated "operator power-cycled the device". Transient
    /// rates stay active; the latch and history are preserved.
    pub fn revive(&self) {
        self.death_at.store(u64::MAX, Ordering::Relaxed);
        self.dead.store(false, Ordering::Relaxed);
    }

    /// Every fault injected so far, in injection order — the schedule
    /// the determinism suite pins across thread counts.
    pub fn history(&self) -> Vec<FaultRecord> {
        self.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_hits(inj: &FaultInjector, events: u64) -> usize {
        (0..events).filter(|_| inj.on_launch().is_some()).count()
    }

    #[test]
    fn decisions_are_reproducible_and_rate_shaped() {
        let plan = FaultPlan::seeded(42).stall_rate(0.05);
        let a = FaultInjector::new(plan.clone(), "d");
        let b = FaultInjector::new(plan, "d");
        let ha = count_hits(&a, 4000);
        let hb = count_hits(&b, 4000);
        assert_eq!(ha, hb, "same seed, same schedule");
        assert_eq!(a.history(), b.history());
        // ~5% of 4000 = 200; allow generous slack for hash variance.
        assert!((100..300).contains(&ha), "hit count {ha} far from 5%");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = FaultInjector::new(FaultPlan::seeded(1).stall_rate(0.1), "d");
        let b = FaultInjector::new(FaultPlan::seeded(2).stall_rate(0.1), "d");
        for _ in 0..500 {
            a.on_launch();
            b.on_launch();
        }
        assert_ne!(a.history(), b.history());
    }

    #[test]
    fn death_latches_terminally_and_revive_clears() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).death_after(3), "d");
        assert!(inj.on_launch().is_none());
        assert!(inj.on_launch().is_none());
        assert_eq!(inj.on_launch(), Some(FaultKind::Death));
        assert_eq!(inj.on_upload(100), None, "dead device latches, no corrupt");
        assert!(inj.on_alloc(), "dead device refuses allocations");
        assert!(inj.is_dead());
        assert_eq!(
            inj.take().map(|f| f.kind),
            Some(FaultKind::Death),
            "death dominates the latch"
        );
        assert_eq!(inj.take(), None, "take drains");
        inj.revive();
        assert!(!inj.is_dead());
        assert!(inj.on_launch().is_none(), "revived device runs again");
    }

    #[test]
    fn worst_fault_ordering() {
        assert!(FaultKind::Death > FaultKind::Corruption);
        assert!(FaultKind::Corruption > FaultKind::Stall);
        assert!(FaultKind::Stall > FaultKind::AllocFail);
        assert!(FaultKind::Corruption.is_transient());
        assert!(FaultKind::Stall.is_transient());
        assert!(FaultKind::AllocFail.is_transient());
        assert!(!FaultKind::Death.is_transient());
    }

    #[test]
    fn corruption_picks_in_range_indices() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).corrupt_rate(1.0), "d");
        for len in [1usize, 2, 7, 1024] {
            let idx = inj.on_upload(len).expect("rate 1.0 always fires");
            assert!(idx < len);
        }
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let inj = FaultInjector::new(plan, "d");
        for _ in 0..100 {
            assert!(inj.on_launch().is_none());
            assert!(inj.on_upload(16).is_none());
            assert!(!inj.on_alloc());
        }
        assert_eq!(inj.take(), None);
    }
}
