//! Simulated device global memory.
//!
//! [`GlobalBuffer`] is the moral equivalent of a `CuArray`/`ROCArray`
//! allocation: a flat, bounds-checked array that many workgroups access
//! concurrently. As on a real GPU, the runtime does **not** serialise
//! accesses — kernels must write disjoint locations from distinct
//! workgroups within a launch (reads may overlap freely). All the kernels
//! in this workspace are race-free by construction (each workgroup owns a
//! disjoint tile or column group), and the integration tests cross-check
//! results against sequential oracles, which would catch a racy kernel as
//! nondeterminism.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Per-host-thread launch context for the race detector:
    /// `(epoch, group, active)` set by the device around each workgroup.
    pub(crate) static RACE_CTX: Cell<(u64, u64, bool)> = const { Cell::new((0, 0, false)) };
}

/// Sets the race-detection context for the current host thread (used by
/// the device's launch loop).
pub(crate) fn set_race_ctx(epoch: u64, group: u64, active: bool) {
    RACE_CTX.with(|c| c.set((epoch, group, active)));
}

/// One element of device memory, sharable across simulated workgroups.
#[repr(transparent)]
struct DeviceCell<T>(UnsafeCell<T>);

// SAFETY: concurrent access discipline is the kernel author's obligation,
// exactly as for GPU global memory. Bounds are always checked; only
// simultaneous read/write of the *same* element from different workgroups
// is (documented) UB, and no kernel in this workspace does that.
unsafe impl<T: Send + Sync> Sync for DeviceCell<T> {}

/// Flat device-global memory buffer of `T`.
pub struct GlobalBuffer<T> {
    cells: Box<[DeviceCell<T>]>,
    /// Optional write-ownership tags for the race detector: per element,
    /// `(epoch << 32) | (group + 1)` of the last writer. Allocated only
    /// on race-checking devices.
    tags: Option<Box<[AtomicU64]>>,
}

impl<T: Copy + Send + Sync> GlobalBuffer<T> {
    /// Allocates and uploads `data` to the device.
    pub fn from_vec(data: Vec<T>) -> Self {
        GlobalBuffer {
            cells: data
                .into_iter()
                .map(|v| DeviceCell(UnsafeCell::new(v)))
                .collect(),
            tags: None,
        }
    }

    /// Enables write-write race detection on this buffer: two workgroups
    /// of the same launch writing the same element is a kernel bug on
    /// real GPUs; with tags enabled the simulator panics on it instead of
    /// silently producing schedule-dependent output.
    pub fn with_race_tags(mut self) -> Self {
        let tags = (0..self.cells.len()).map(|_| AtomicU64::new(0)).collect();
        self.tags = Some(tags);
        self
    }

    /// Allocates `len` elements initialised to `fill`. Large buffers are
    /// filled in parallel on the host pool (each chunk writes a disjoint
    /// index range — the device-alloc path for padded n×n problems);
    /// small ones inline. Contents are identical either way.
    pub fn filled(len: usize, fill: T) -> Self {
        /// Below this, the pool dispatch overhead beats the plain fill.
        const PAR_FILL_MIN: usize = 1 << 16;
        if len < PAR_FILL_MIN {
            return Self::from_vec(vec![fill; len]);
        }
        use rayon::prelude::*;
        struct CellPtr<T>(*mut DeviceCell<T>);
        // SAFETY: each index is written by exactly one chunk below.
        unsafe impl<T: Send + Sync> Send for CellPtr<T> {}
        unsafe impl<T: Send + Sync> Sync for CellPtr<T> {}
        impl<T> CellPtr<T> {
            /// Method (not field) access so the closure captures the
            /// wrapper, keeping the `Send`/`Sync` impls effective under
            /// edition-2021 disjoint capture.
            unsafe fn at(&self, i: usize) -> *mut DeviceCell<T> {
                self.0.add(i)
            }
        }
        let mut cells: Vec<DeviceCell<T>> = Vec::with_capacity(len);
        let base = CellPtr(cells.as_mut_ptr());
        (0..len).into_par_iter().for_each(|i| {
            // SAFETY: `i` is in capacity bounds and each index is written
            // exactly once, by the chunk that owns it.
            unsafe { base.at(i).write(DeviceCell(UnsafeCell::new(fill))) };
        });
        // SAFETY: every slot in 0..len was initialised above, and the
        // parallel loop completed before this point.
        unsafe { cells.set_len(len) };
        GlobalBuffer {
            cells: cells.into_boxed_slice(),
            tags: None,
        }
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// On out-of-bounds access.
    #[inline(always)]
    pub fn read(&self, i: usize) -> T {
        // SAFETY: bounds-checked by the index; racing with a concurrent
        // write to the same element is excluded by the kernel discipline
        // documented on the type.
        unsafe { *self.cells[i].0.get() }
    }

    /// Writes element `i`.
    ///
    /// # Panics
    /// On out-of-bounds access, or — on race-checking buffers — when two
    /// workgroups of the same launch write the same element.
    #[inline(always)]
    pub fn write(&self, i: usize, v: T) {
        if let Some(tags) = &self.tags {
            let (epoch, group, active) = RACE_CTX.with(|c| c.get());
            if active {
                let cur = (epoch << 32) | (group + 1);
                let prev = tags[i].swap(cur, Ordering::Relaxed);
                let (pe, pg) = (prev >> 32, prev & 0xFFFF_FFFF);
                assert!(
                    !(pe == epoch && pg != 0 && pg != group + 1),
                    "write-write race on element {i}: workgroups {} and {group} \
                     of the same launch (epoch {epoch})",
                    pg - 1
                );
            }
        }
        // SAFETY: see `read`.
        unsafe { *self.cells[i].0.get() = v }
    }

    /// Downloads the buffer back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }

    /// Bulk read of `dst.len()` consecutive elements starting at
    /// `offset`, mapped through `f` (e.g. a storage → compute upcast) —
    /// the contiguous fast path of kernel cooperative loaders.
    /// Equivalent to element-wise [`read`](Self::read) of the same range
    /// (same values, same race discipline: reads never race within a
    /// launch), with the bounds checked once so the loop vectorises.
    ///
    /// # Panics
    /// If `offset + dst.len()` exceeds the buffer length.
    #[inline]
    pub fn read_range_with<U>(&self, offset: usize, dst: &mut [U], f: impl Fn(T) -> U) {
        let cells = &self.cells[offset..offset + dst.len()];
        for (d, cell) in dst.iter_mut().zip(cells) {
            // SAFETY: see `read`.
            *d = f(unsafe { *cell.0.get() });
        }
    }

    /// Bulk write of `src` to consecutive elements starting at `offset`,
    /// mapped through `f` (e.g. a compute → storage rounding) — the
    /// contiguous fast path of kernel cooperative stores. On
    /// race-checking buffers this degrades to element-wise
    /// [`write`](Self::write) so every ownership tag is maintained.
    ///
    /// # Panics
    /// If `offset + src.len()` exceeds the buffer length; on
    /// race-checking buffers, additionally on a write-write race.
    #[inline]
    pub fn write_range_with<U: Copy>(&self, offset: usize, src: &[U], f: impl Fn(U) -> T) {
        if self.tags.is_some() {
            for (k, &v) in src.iter().enumerate() {
                self.write(offset + k, f(v));
            }
            return;
        }
        let cells = &self.cells[offset..offset + src.len()];
        for (cell, &v) in cells.iter().zip(src) {
            // SAFETY: see `read`; distinct workgroups write disjoint
            // ranges by the kernel discipline documented on the type.
            unsafe { *cell.0.get() = f(v) }
        }
    }

    /// Overwrites the whole buffer from a host slice — the reuse path of a
    /// plan/execute workflow (upload into an existing allocation instead
    /// of allocating per solve). Runs outside any launch, so the race
    /// detector's per-launch ownership tags are left untouched (they are
    /// epoch-scoped and cannot alias a future launch).
    ///
    /// # Panics
    /// If `src.len() != self.len()`.
    pub fn copy_from_host(&self, src: &[T]) {
        assert_eq!(
            src.len(),
            self.len(),
            "host upload size must match the device allocation"
        );
        for (i, &v) in src.iter().enumerate() {
            // SAFETY: bounds guaranteed by the length check; host-side
            // writes never race with launches (the device stream is idle
            // between launches by construction).
            unsafe { *self.cells[i].0.get() = v }
        }
    }

    /// Resets every element to `v` (workspace reset between solves).
    pub fn fill(&self, v: T) {
        for cell in self.cells.iter() {
            // SAFETY: see `copy_from_host`.
            unsafe { *cell.0.get() = v }
        }
    }
}

impl<T: Copy + Send + Sync + std::fmt::Debug> std::fmt::Debug for GlobalBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalBuffer(len={})", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_read_write_download() {
        let b = GlobalBuffer::from_vec(vec![1.0f64, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.read(1), 2.0);
        b.write(1, 9.0);
        assert_eq!(b.to_vec(), vec![1.0, 9.0, 3.0]);
    }

    #[test]
    fn filled_buffer() {
        let b = GlobalBuffer::filled(4, 7i32);
        assert_eq!(b.to_vec(), vec![7, 7, 7, 7]);
        assert!(!b.is_empty());
    }

    #[test]
    fn filled_buffer_parallel_path() {
        // Crosses the parallel-fill threshold (1 << 16 elements).
        let len = (1 << 16) + 1234;
        let b = GlobalBuffer::filled(len, 0.5f32);
        assert_eq!(b.len(), len);
        assert!((0..len).all(|i| b.read(i) == 0.5));
    }

    #[test]
    fn copy_from_host_and_fill_reuse_allocation() {
        let b = GlobalBuffer::from_vec(vec![1.0f64, 2.0, 3.0]);
        b.copy_from_host(&[7.0, 8.0, 9.0]);
        assert_eq!(b.to_vec(), vec![7.0, 8.0, 9.0]);
        b.fill(0.5);
        assert_eq!(b.to_vec(), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "host upload size")]
    fn copy_from_host_checks_length() {
        let b = GlobalBuffer::from_vec(vec![0.0f32; 4]);
        b.copy_from_host(&[1.0f32; 3]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let b = GlobalBuffer::from_vec(vec![0.0f32]);
        let _ = b.read(1);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        use rayon::prelude::*;
        let b = GlobalBuffer::filled(1024, 0usize);
        (0..1024usize)
            .into_par_iter()
            .for_each(|i| b.write(i, i * i));
        let v = b.to_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * i));
    }
}
