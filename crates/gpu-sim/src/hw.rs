//! Hardware descriptors for the six platforms of Table 2, plus the
//! capability matrix (which precisions each backend supports).
//!
//! Numbers are taken from Table 2 of the paper where given; fields the paper
//! leaves out (register file size, launch overhead, PCIe bandwidth, Apple
//! specs marked "N.A.") use public datasheet values or conservative
//! estimates, noted inline.

use crate::fault::FaultPlan;
use serde::{Deserialize, Serialize};
use unisvd_scalar::PrecisionKind;

/// GPU vendor/backend, mirroring the KernelAbstractions.jl backend set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// NVIDIA (CUDA.jl in the paper).
    Cuda,
    /// AMD (AMDGPU.jl).
    Rocm,
    /// Intel (oneAPI.jl).
    OneApi,
    /// Apple (Metal.jl).
    Metal,
}

impl BackendKind {
    /// Short display name.
    pub const fn name(self) -> &'static str {
        match self {
            BackendKind::Cuda => "CUDA",
            BackendKind::Rocm => "ROCm",
            BackendKind::OneApi => "oneAPI",
            BackendKind::Metal => "Metal",
        }
    }
}

/// How the backend executes FP16 arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fp16Mode {
    /// Scalar FP16 unsupported on the ALUs; inputs are upcast to FP32 at
    /// load and downcast at store (NVIDIA per §4.3).
    UpcastFp32,
    /// Native scalar FP16 (Apple Metal).
    Native,
    /// The software stack cannot run FP16 at all (AMD Julia stack at the
    /// time of the paper: "Julia AMD GPU currently does not support
    /// conversion at calculation time for FP16", Fig. 5 caption).
    Unsupported,
}

/// Static description of one GPU platform (one row of Table 2).
///
/// Descriptor **identity** is the [`name`](Self::name) field: every
/// constructor in [`hw`](crate::hw) uses a distinct static name, plan
/// signatures key on it, and fleet routers use it to label devices.
/// The derived `PartialEq` compares every field, so two descriptors are
/// equal exactly when they describe the same configuration of the same
/// platform.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HardwareDescriptor {
    /// Marketing name, e.g. "NVIDIA H100".
    pub name: &'static str,
    /// Vendor backend.
    pub backend: BackendKind,
    /// Streaming multiprocessors / compute units / cores.
    pub sm_count: u32,
    /// L1 (shared-memory-carved) cache per SM, bytes.
    pub l1_bytes: u64,
    /// Device-wide L2 cache, bytes.
    pub l2_bytes: u64,
    /// DRAM bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Peak FP32 throughput, FLOP/s.
    pub fp32_flops: f64,
    /// FP64 throughput as a fraction of FP32 (0 = unsupported).
    pub fp64_ratio: f64,
    /// FP16 execution mode.
    pub fp16_mode: Fp16Mode,
    /// Boost clock, Hz.
    pub clock_hz: f64,
    /// Threads per warp / wavefront / SIMD-group.
    pub warp_size: u32,
    /// Register file bytes per SM.
    pub regfile_bytes: u64,
    /// Max resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Max resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Device memory, bytes.
    pub memory_bytes: u64,
    /// Fixed cost of one kernel launch, seconds.
    pub launch_overhead_s: f64,
    /// Host↔device transfer bandwidth (PCIe/NVLink/unified), bytes/second.
    pub pcie_bandwidth: f64,
    /// Host CPU double-precision throughput, FLOP/s (for the hybrid
    /// baselines that run panel/solver stages on the CPU).
    pub cpu_flops: f64,
    /// Optional seeded fault schedule ([`FaultPlan`]): every
    /// [`Device`](crate::Device) built from this descriptor injects the
    /// plan's faults deterministically. `None` (the default for all
    /// shipped platforms) means a fault-free device. Excluded from
    /// descriptor *identity* ([`is_same_device`](Self::is_same_device))
    /// but part of the derived `PartialEq`, like every other
    /// configuration field.
    pub fault: Option<FaultPlan>,
}

impl HardwareDescriptor {
    /// Peak device FLOP/s at a given precision. FP16 follows
    /// [`Fp16Mode`]: upcast runs at FP32 rate (paper §4.3).
    pub fn peak_flops(&self, p: PrecisionKind) -> f64 {
        match p {
            PrecisionKind::Fp32 => self.fp32_flops,
            PrecisionKind::Fp64 => self.fp32_flops * self.fp64_ratio,
            PrecisionKind::Fp16 => match self.fp16_mode {
                Fp16Mode::UpcastFp32 => self.fp32_flops,
                Fp16Mode::Native => self.fp32_flops,
                Fp16Mode::Unsupported => 0.0,
            },
        }
    }

    /// Whether the backend + software stack supports a precision, with the
    /// paper's support matrix: no FP64 on Metal, no FP16 on ROCm (Julia
    /// stack limitation), everything on CUDA/oneAPI.
    pub fn supports(&self, p: PrecisionKind) -> Result<(), UnsupportedPrecision> {
        let ok = match p {
            PrecisionKind::Fp16 => self.fp16_mode != Fp16Mode::Unsupported,
            PrecisionKind::Fp32 => true,
            PrecisionKind::Fp64 => self.fp64_ratio > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(UnsupportedPrecision {
                device: self.name,
                precision: p,
            })
        }
    }

    /// Whether a working set of `bytes` fits in device memory, with a 25%
    /// headroom factor for workspace (τ factors, staging buffers).
    pub fn fits(&self, bytes: u64) -> bool {
        (bytes as f64) * 1.3 <= self.memory_bytes as f64
    }

    /// Whether this descriptor names the same device as `other` —
    /// descriptor identity, as opposed to the derived `PartialEq`'s
    /// full-configuration equality. Fleet routing and plan signatures
    /// key on this.
    pub fn is_same_device(&self, other: &HardwareDescriptor) -> bool {
        self.name == other.name
    }

    /// Returns this descriptor with a [`FaultPlan`] attached: every
    /// device and ledger built from the result injects the plan's
    /// faults deterministically. Chaos tests and benches use this; the
    /// shipped platform constructors never set a plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Largest power-of-two square matrix of precision `p` that fits,
    /// reproducing Fig. 5's capacity effect (FP16 reaches 131k on H100).
    pub fn max_pow2_matrix(&self, p: PrecisionKind) -> usize {
        let mut n = 128usize;
        while self.fits(((2 * n) as u64).pow(2) * p.bytes() as u64) {
            n *= 2;
        }
        n
    }
}

/// Error returned when a (device, precision) pair is outside the support
/// matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedPrecision {
    /// Device name.
    pub device: &'static str,
    /// The unsupported precision.
    pub precision: PrecisionKind,
}

impl std::fmt::Display for UnsupportedPrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} does not support {}", self.device, self.precision)
    }
}

impl std::error::Error for UnsupportedPrecision {}

const KB: u64 = 1024;
const MB: u64 = 1024 * KB;
const GB: u64 = 1024 * MB;

/// NVIDIA H100 SXM (Table 2 row 1).
pub fn h100() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "NVIDIA H100",
        backend: BackendKind::Cuda,
        sm_count: 132,
        l1_bytes: 256 * KB,
        l2_bytes: 50 * MB,
        bandwidth: 3.36e12,
        fp32_flops: 67e12,
        fp64_ratio: 0.5,
        fp16_mode: Fp16Mode::UpcastFp32,
        clock_hz: 1.980e9,
        warp_size: 32,
        regfile_bytes: 256 * KB, // 64k 32-bit registers per SM
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        memory_bytes: 80 * GB,
        launch_overhead_s: 4.0e-6,
        pcie_bandwidth: 55e9, // NVLink-attached host bridge
        cpu_flops: 1.8e12,    // Xeon Platinum 8462Y (2.8 GHz, 32c, AVX-512)
        fault: None,
    }
}

/// NVIDIA A100 80GB (Table 2 row 2).
pub fn a100() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "NVIDIA A100",
        backend: BackendKind::Cuda,
        sm_count: 108,
        l1_bytes: 192 * KB,
        l2_bytes: 80 * MB,
        bandwidth: 1.94e12,
        fp32_flops: 19.5e12,
        fp64_ratio: 0.5,
        fp16_mode: Fp16Mode::UpcastFp32,
        clock_hz: 1.410e9,
        warp_size: 32,
        regfile_bytes: 256 * KB,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 32,
        memory_bytes: 80 * GB,
        launch_overhead_s: 4.5e-6,
        pcie_bandwidth: 25e9,
        cpu_flops: 1.0e12, // Xeon Gold 6330
        fault: None,
    }
}

/// NVIDIA RTX 4060 Laptop (Table 2 row 3). The paper's "272 MB/s" is a
/// typo for GB/s.
pub fn rtx4060() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "NVIDIA RTX4060",
        backend: BackendKind::Cuda,
        sm_count: 24,
        l1_bytes: 128 * KB,
        l2_bytes: 96 * MB,
        bandwidth: 272e9,
        fp32_flops: 15.1e12,
        fp64_ratio: 1.0 / 64.0, // consumer Ada FP64 rate
        fp16_mode: Fp16Mode::UpcastFp32,
        clock_hz: 2.125e9,
        warp_size: 32,
        regfile_bytes: 256 * KB,
        max_threads_per_sm: 1536,
        max_blocks_per_sm: 24,
        memory_bytes: 8 * GB,
        launch_overhead_s: 5.0e-6,
        pcie_bandwidth: 16e9,
        cpu_flops: 0.6e12, // Core i7-14650HX
        fault: None,
    }
}

/// AMD MI250 (Table 2 row 4). 208 compute units across both dies; the
/// tiny 16 KB L1 per CU is the key architectural difference the paper's
/// hyperparameter discussion keys on.
pub fn mi250() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "AMD MI250",
        backend: BackendKind::Rocm,
        sm_count: 208,
        l1_bytes: 16 * KB,
        l2_bytes: 16 * MB,
        bandwidth: 3.28e12,
        fp32_flops: 45.3e12,
        fp64_ratio: 1.0,                  // CDNA2 vector FP64 runs at FP32 rate
        fp16_mode: Fp16Mode::Unsupported, // Julia AMDGPU stack (Fig. 5)
        clock_hz: 1.700e9,
        warp_size: 64,
        regfile_bytes: 512 * KB, // CDNA2 VGPR file per CU
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 16,
        memory_bytes: 128 * GB,
        launch_overhead_s: 9.0e-6, // HIP launch latency is ~2x CUDA
        pcie_bandwidth: 36e9,      // Infinity-Fabric-attached EPYC
        cpu_flops: 1.0e12,         // Trento EPYC 7A53
        fault: None,
    }
}

/// Apple M1 Pro (Table 2 row 5). Apple does not publish these numbers
/// ("N.A." in the paper); values are community-measured estimates for the
/// 8-core-GPU bin the paper lists.
pub fn m1_pro() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "Apple M1 Pro",
        backend: BackendKind::Metal,
        sm_count: 8,
        l1_bytes: 64 * KB,
        l2_bytes: 24 * MB, // SLC share
        bandwidth: 200e9,
        fp32_flops: 2.6e12,
        fp64_ratio: 0.0, // Metal has no FP64
        fp16_mode: Fp16Mode::Native,
        clock_hz: 1.296e9,
        warp_size: 32,
        regfile_bytes: 208 * KB,
        max_threads_per_sm: 1536,
        max_blocks_per_sm: 24,
        memory_bytes: 16 * GB, // unified
        launch_overhead_s: 8.0e-6,
        pcie_bandwidth: 60e9, // unified memory: cheap "transfers"
        cpu_flops: 0.4e12,
        fault: None,
    }
}

/// Intel Data Center GPU Max / Ponte Vecchio (Table 2 row 6).
pub fn pvc() -> HardwareDescriptor {
    HardwareDescriptor {
        name: "Intel PVC",
        backend: BackendKind::OneApi,
        sm_count: 1024, // XVE count, as Table 2 reports
        l1_bytes: 64 * KB,
        l2_bytes: 408 * MB,
        bandwidth: 3.28e12,
        fp32_flops: 52.4e12,
        fp64_ratio: 1.0, // PVC FP64 = FP32 vector rate
        fp16_mode: Fp16Mode::UpcastFp32,
        clock_hz: 1.600e9,
        warp_size: 32,
        regfile_bytes: 64 * KB, // per XVE GRF is small
        max_threads_per_sm: 1024,
        max_blocks_per_sm: 16,
        memory_bytes: 64 * GB,
        launch_overhead_s: 14.0e-6, // SYCL queue submission latency
        pcie_bandwidth: 32e9,
        cpu_flops: 1.2e12, // Xeon Max 9470C
        fault: None,
    }
}

/// All six platforms, in Table 2 order.
pub fn all_platforms() -> Vec<HardwareDescriptor> {
    vec![h100(), a100(), rtx4060(), mi250(), m1_pro(), pvc()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_paper() {
        // Fig. 5: no FP64 on Metal, no FP16 on AMD, all three on NVIDIA.
        assert!(h100().supports(PrecisionKind::Fp16).is_ok());
        assert!(h100().supports(PrecisionKind::Fp64).is_ok());
        assert!(mi250().supports(PrecisionKind::Fp16).is_err());
        assert!(mi250().supports(PrecisionKind::Fp64).is_ok());
        assert!(m1_pro().supports(PrecisionKind::Fp64).is_err());
        assert!(m1_pro().supports(PrecisionKind::Fp16).is_ok());
        assert!(pvc().supports(PrecisionKind::Fp32).is_ok());
    }

    #[test]
    fn fp16_capacity_exceeds_fp32_capacity() {
        // §4.3: FP16 "enables GPU-resident computations for larger matrix
        // sizes (up to 131k × 131k) than previously possible".
        let h = h100();
        let m16 = h.max_pow2_matrix(PrecisionKind::Fp16);
        let m32 = h.max_pow2_matrix(PrecisionKind::Fp32);
        let m64 = h.max_pow2_matrix(PrecisionKind::Fp64);
        assert_eq!(m16, 131072);
        assert!(m16 > m32);
        assert!(m32 >= m64);
    }

    #[test]
    fn peak_flops_ratios() {
        let h = h100();
        assert_eq!(h.peak_flops(PrecisionKind::Fp64), h.fp32_flops * 0.5);
        // FP16 upcast runs at FP32 speed — the Fig. 5 observation that the
        // FP16 and FP32 curves coincide on NVIDIA.
        assert_eq!(
            h.peak_flops(PrecisionKind::Fp16),
            h.peak_flops(PrecisionKind::Fp32)
        );
        assert_eq!(mi250().peak_flops(PrecisionKind::Fp16), 0.0);
        assert_eq!(m1_pro().peak_flops(PrecisionKind::Fp64), 0.0);
    }

    #[test]
    fn table2_row_values() {
        let rows = all_platforms();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].sm_count, 132);
        assert_eq!(rows[1].sm_count, 108);
        assert_eq!(rows[2].sm_count, 24);
        assert_eq!(rows[3].sm_count, 208);
        assert_eq!(rows[3].warp_size, 64);
        assert_eq!(rows[4].backend, BackendKind::Metal);
        assert_eq!(rows[5].sm_count, 1024);
    }

    #[test]
    fn descriptor_identity_and_equality() {
        // Identity is the name; equality is the whole configuration.
        let a = h100();
        let mut b = h100();
        assert!(a.is_same_device(&b));
        assert_eq!(a, b);
        b.memory_bytes /= 2;
        assert!(a.is_same_device(&b), "identity survives re-configuration");
        assert_ne!(a, b, "equality does not");
        assert!(!a.is_same_device(&a100()));
        // Every shipped platform has a distinct identity (signatures and
        // fleet routing key on it).
        let names: Vec<_> = all_platforms().iter().map(|h| h.name).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn fits_has_headroom() {
        let h = h100();
        assert!(h.fits(60 * GB));
        assert!(!h.fits(70 * GB)); // 70 GB * 1.25 > 80 GB
    }
}
