//! Bounded host↔device tile staging for out-of-core execution.
//!
//! An out-of-core solve streams an operand through the device in tiles:
//! each tile is packed on the host, uploaded, consumed, and its staging
//! buffer reused for the next tile. Allocating a fresh host buffer per
//! tile would put an `O(tiles)` allocation churn on the steady-state
//! path and — worse — would leave the resident staging footprint
//! unbounded. [`StagingArena`] removes both problems with the same
//! recipe [`WorkgroupArena`](crate::WorkgroupArena) uses for workgroup
//! contexts: buffers are **leased**, reset to the zeroed state a fresh
//! allocation would have, and returned to a typed free list when the
//! lease drops, while a [`MemoryLedger`] bounds the total bytes the
//! arena may keep resident.
//!
//! Every byte a tile occupies is charged to the ledger through a
//! drop-guarded [`Reservation`](crate::Reservation) *before* the buffer
//! grows, so a lease that would exceed the bound fails cleanly
//! ([`lease`](StagingArena::lease) returns `None`, nothing charged) and
//! a panic between "charged" and "pooled" gives the bytes back.
//! Pooled buffers stay charged — they still occupy memory — so the
//! ledger gauge is the arena's true resident footprint at all times.
//!
//! Accounting is by *requested tile length* (`len · size_of::<T>()`),
//! the quantity the out-of-core cost model reasons about; allocator
//! capacity slack is not modeled.

use crate::hw::HardwareDescriptor;
use crate::mem::MemoryLedger;
use parking_lot::Mutex;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One pooled staging buffer and the ledger bytes it holds.
struct PooledTile<T> {
    buf: Vec<T>,
    charged: u64,
}

/// The per-element-type free list. [`StagingTile`]s hold an `Arc` to
/// their originating pool and push their buffer back on drop.
struct TilePool<T> {
    free: Mutex<Vec<PooledTile<T>>>,
}

impl<T> Default for TilePool<T> {
    fn default() -> Self {
        TilePool {
            free: Mutex::new(Vec::new()),
        }
    }
}

/// A bounded, reusable pool of host-side staging buffers for
/// tile-streamed (out-of-core) execution. See the module docs for the
/// lifecycle; [`stats`](StagingArena::stats) exposes lease/reuse
/// counters so tests can prove steady-state streaming recycles instead
/// of allocating.
pub struct StagingArena {
    ledger: MemoryLedger,
    pools: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
    leases: AtomicU64,
    reuses: AtomicU64,
}

impl StagingArena {
    /// An arena whose resident staging bytes are bounded by `budget`.
    pub fn new(budget_bytes: u64) -> Self {
        StagingArena {
            ledger: MemoryLedger::new(budget_bytes),
            pools: Mutex::new(HashMap::new()),
            leases: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        }
    }

    /// An arena bounded by the device's plan-admission budget
    /// ([`HardwareDescriptor::budget_bytes`]): staged tiles may use at
    /// most what a single resident in-core plan could.
    pub fn for_device(hw: &HardwareDescriptor) -> Self {
        Self::new(hw.budget_bytes())
    }

    /// The ledger bounding this arena's resident bytes (pooled buffers
    /// included — they still occupy memory).
    pub fn ledger(&self) -> &MemoryLedger {
        &self.ledger
    }

    /// Leases a zeroed `len`-element staging buffer: a pooled buffer
    /// when one is free (reset to the state a fresh allocation would
    /// have), a fresh charged one otherwise. Returns `None` — charging
    /// nothing — when the lease would push the arena's resident bytes
    /// over budget; the caller must return (drop) an outstanding tile
    /// first or stream with smaller tiles.
    pub fn lease<T>(&self, len: usize) -> Option<StagingTile<T>>
    where
        T: Copy + Default + Send + Sync + 'static,
    {
        let pool = self.typed_pool::<T>();
        let pooled = pool.free.lock().pop();
        let need = (len * std::mem::size_of::<T>()) as u64;
        let (mut buf, charged) = match pooled {
            Some(PooledTile { buf, charged }) => {
                if need > charged {
                    // Growing a pooled buffer charges only the delta —
                    // guard-held so the push-back path below releases it.
                    let Some(grow) = self.ledger.try_reserve_guard(need - charged) else {
                        pool.free.lock().push(PooledTile { buf, charged });
                        return None;
                    };
                    grow.commit();
                    self.note_lease(true);
                    (buf, need)
                } else {
                    self.note_lease(true);
                    (buf, charged)
                }
            }
            None => {
                let fresh = self.ledger.try_reserve_guard(need)?;
                fresh.commit();
                self.note_lease(false);
                (Vec::new(), need)
            }
        };
        buf.clear();
        buf.resize(len, T::default());
        Some(StagingTile { buf, charged, pool })
    }

    /// `(leases, reuses)` since construction: how many tiles were handed
    /// out, and how many of those were served from the pool instead of
    /// freshly allocated. In steady-state streaming every lease is a
    /// reuse.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.leases.load(Ordering::Relaxed),
            self.reuses.load(Ordering::Relaxed),
        )
    }

    fn note_lease(&self, reused: bool) {
        self.leases.fetch_add(1, Ordering::Relaxed);
        if reused {
            self.reuses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn typed_pool<T: Send + Sync + 'static>(&self) -> Arc<TilePool<T>> {
        let mut pools = self.pools.lock();
        let entry = pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(TilePool::<T>::default()) as Arc<dyn Any + Send + Sync>)
            .clone();
        drop(pools);
        entry
            .downcast::<TilePool<T>>()
            .expect("pool entry keyed by its own TypeId")
    }
}

impl std::fmt::Debug for StagingArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (leases, reuses) = self.stats();
        write!(
            f,
            "StagingArena({leases} leases, {reuses} reuses, {}/{} bytes)",
            self.ledger.used(),
            self.ledger.budget()
        )
    }
}

/// A leased staging buffer: derefs to its element slice, returns the
/// buffer (still charged) to the arena's free list on drop.
pub struct StagingTile<T: Send + Sync + 'static> {
    buf: Vec<T>,
    charged: u64,
    pool: Arc<TilePool<T>>,
}

impl<T: Send + Sync + 'static> StagingTile<T> {
    /// Ledger bytes this tile holds (kept charged while pooled).
    pub fn charged_bytes(&self) -> u64 {
        self.charged
    }
}

impl<T: Send + Sync + 'static> std::ops::Deref for StagingTile<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Send + Sync + 'static> std::ops::DerefMut for StagingTile<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T: Send + Sync + 'static> Drop for StagingTile<T> {
    fn drop(&mut self) {
        self.pool.free.lock().push(PooledTile {
            buf: std::mem::take(&mut self.buf),
            charged: self.charged,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_zeroes_and_recycles() {
        let arena = StagingArena::new(1024);
        {
            let mut t = arena.lease::<f64>(8).unwrap();
            t[0] = 7.0;
            assert_eq!(t.len(), 8);
            assert_eq!(t.charged_bytes(), 64);
        } // returned to the pool, still charged
        assert_eq!(arena.ledger().used(), 64);
        let t = arena.lease::<f64>(8).unwrap();
        assert!(
            t.iter().all(|&x| x == 0.0),
            "reused tiles must be reset to the zeroed fresh state"
        );
        assert_eq!(arena.ledger().used(), 64, "reuse charges nothing new");
        assert_eq!(arena.stats(), (2, 1));
    }

    #[test]
    fn budget_bounds_resident_tiles() {
        let arena = StagingArena::new(100);
        let a = arena.lease::<u8>(60).unwrap();
        assert!(
            arena.lease::<u8>(60).is_none(),
            "second tile would exceed the bound"
        );
        assert_eq!(arena.ledger().used(), 60, "failed lease charges nothing");
        drop(a);
        // The pooled tile still occupies memory: a 60-byte lease reuses
        // it, but a second concurrent one is still over budget.
        let a = arena.lease::<u8>(60).unwrap();
        assert!(arena.lease::<u8>(60).is_none());
        drop(a);
    }

    #[test]
    fn growth_charges_only_the_delta() {
        let arena = StagingArena::new(100);
        drop(arena.lease::<u8>(40).unwrap());
        let t = arena.lease::<u8>(70).unwrap();
        assert_eq!(t.charged_bytes(), 70);
        assert_eq!(arena.ledger().used(), 70);
        drop(t);
        // Growth past the budget fails and leaves the pooled tile usable.
        assert!(arena.lease::<u8>(200).is_none());
        assert_eq!(arena.ledger().used(), 70);
        assert!(arena.lease::<u8>(30).is_some());
    }

    #[test]
    fn pools_are_segregated_by_element_type() {
        let arena = StagingArena::new(1 << 20);
        drop(arena.lease::<f32>(4).unwrap());
        drop(arena.lease::<f64>(4).unwrap());
        drop(arena.lease::<f32>(4).unwrap());
        drop(arena.lease::<f64>(4).unwrap());
        assert_eq!(arena.stats(), (4, 2));
    }
}
