//! Device-memory accounting across many allocations.
//!
//! A single plan's working set is capacity-checked at plan time (the
//! `ExceedsDeviceMemory` rejection). A serving layer, though, keeps
//! *many* plans alive at once — a cache of resident device buffers —
//! and the sum must respect the same rule. [`MemoryLedger`] is that
//! shared counter: a lock-free reserve/release gauge against a fixed
//! byte budget, safe to consult from any thread.

use crate::fault::FaultInjector;
use crate::hw::HardwareDescriptor;
use std::sync::atomic::{AtomicU64, Ordering};

impl HardwareDescriptor {
    /// Largest working set, in bytes, that [`fits`](Self::fits) accepts:
    /// device memory net of the 25% workspace headroom. This is the byte
    /// budget a plan cache must keep its resident total under so that
    /// every cached plan preserves the `ExceedsDeviceMemory` guarantee.
    pub fn budget_bytes(&self) -> u64 {
        (self.memory_bytes as f64 / 1.3).floor() as u64
    }
}

/// A concurrent reserve/release byte gauge with a hard budget.
///
/// Reservations are atomic (compare-and-swap, no lock) and never
/// overshoot: [`try_reserve`](Self::try_reserve) either charges the full
/// amount within budget or charges nothing.
#[derive(Debug)]
pub struct MemoryLedger {
    budget: u64,
    used: AtomicU64,
    /// Optional seeded fault hook: when set, reservation attempts can
    /// transiently fail (nothing charged) per the injector's schedule.
    faults: Option<FaultInjector>,
}

impl MemoryLedger {
    /// A ledger with an explicit byte budget.
    pub fn new(budget: u64) -> Self {
        MemoryLedger {
            budget,
            used: AtomicU64::new(0),
            faults: None,
        }
    }

    /// A ledger with the device's full budget
    /// ([`HardwareDescriptor::budget_bytes`]), injecting the
    /// descriptor's [`FaultPlan`](crate::FaultPlan) (if any) into
    /// reservation attempts.
    pub fn for_device(hw: &HardwareDescriptor) -> Self {
        let ledger = Self::new(hw.budget_bytes());
        match hw.fault.clone().filter(|p| p.is_active()) {
            Some(p) => ledger.with_fault_injector(FaultInjector::new(p, hw.name)),
            None => ledger,
        }
    }

    /// Attaches a fault injector: every [`try_reserve`](Self::try_reserve)
    /// first consults the injector's allocation channel and is refused —
    /// charging nothing — when the schedule fires. A refused reservation
    /// is indistinguishable from an out-of-budget one to the caller,
    /// which is the point: the caller's recovery path (drop the guard,
    /// retry, shed) must balance either way.
    pub fn with_fault_injector(mut self, inj: FaultInjector) -> Self {
        self.faults = Some(inj);
        self
    }

    /// Clears the attached injector's death latch (if any) — the ledger
    /// half of a device revival. Transient alloc-failure rates stay
    /// active; without an injector this is a no-op.
    pub fn revive_faults(&self) {
        if let Some(f) = &self.faults {
            f.revive();
        }
    }

    /// The fixed budget, bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.used())
    }

    /// Available bytes as a fraction of the budget, in `[0, 1]` — the
    /// headroom signal fleet placement compares across devices of very
    /// different sizes (a 0-budget ledger reports 0 headroom).
    pub fn headroom_fraction(&self) -> f64 {
        if self.budget == 0 {
            0.0
        } else {
            self.available() as f64 / self.budget as f64
        }
    }

    /// Attempts to reserve `bytes`; on `false` nothing was charged.
    /// With a fault injector attached, a reservation can also fail
    /// transiently while well within budget (still charging nothing).
    pub fn try_reserve(&self, bytes: u64) -> bool {
        if let Some(f) = &self.faults {
            if f.on_alloc() {
                return false;
            }
        }
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(next) if next <= self.budget => next,
                _ => return false,
            };
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(observed) => cur = observed,
            }
        }
    }

    /// [`try_reserve`](Self::try_reserve) returning a drop guard instead
    /// of a bare `bool`: the reservation is released automatically when
    /// the guard drops, so every early-return and panic path between
    /// "bytes charged" and "bytes handed over to long-lived accounting"
    /// gives the budget back. Call [`Reservation::commit`] once the
    /// reservation's owner tracks the bytes itself (e.g. a cache insert
    /// that will `release` on eviction).
    pub fn try_reserve_guard(&self, bytes: u64) -> Option<Reservation<'_>> {
        // `then`, not `then_some`: the guard must only ever exist for a
        // reservation that actually happened (its Drop releases).
        self.try_reserve(bytes).then(|| Reservation {
            ledger: self,
            bytes,
        })
    }

    /// Returns a prior reservation of `bytes`. Releasing more than is
    /// reserved clamps to zero (a caller accounting bug, but one that
    /// must not wrap the gauge into nonsense).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A held [`MemoryLedger`] reservation that releases itself on drop.
///
/// Obtained from [`MemoryLedger::try_reserve_guard`]. The guard exists to
/// make reservation leaks structurally impossible: failure paths that
/// abandon a half-done admission (a cache slot raced away, a plan build
/// failed, a solve panicked) return their bytes by simply dropping the
/// guard, instead of every such path remembering to call
/// [`MemoryLedger::release`].
#[derive(Debug)]
#[must_use = "dropping immediately releases the reservation"]
pub struct Reservation<'a> {
    ledger: &'a MemoryLedger,
    bytes: u64,
}

impl Reservation<'_> {
    /// Bytes this reservation holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Consumes the guard *without* releasing: ownership of the bytes
    /// passes to the caller's own accounting, which must eventually
    /// [`MemoryLedger::release`] them (e.g. on cache eviction).
    pub fn commit(mut self) {
        self.bytes = 0;
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            self.ledger.release(self.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::h100;

    #[test]
    fn reserve_release_roundtrip() {
        let ledger = MemoryLedger::new(100);
        assert!(ledger.try_reserve(60));
        assert!(!ledger.try_reserve(50), "would exceed the budget");
        assert_eq!(ledger.used(), 60, "failed reserve must charge nothing");
        assert!(ledger.try_reserve(40));
        assert_eq!(ledger.available(), 0);
        ledger.release(100);
        assert_eq!(ledger.used(), 0);
        ledger.release(1); // over-release clamps instead of wrapping
        assert_eq!(ledger.used(), 0);
    }

    #[test]
    fn device_budget_matches_fits_rule() {
        let hw = h100();
        let budget = hw.budget_bytes();
        assert!(hw.fits(budget), "the budget itself must fit");
        // The budget is maximal up to rounding: 1% more must not fit.
        assert!(!hw.fits(budget + budget / 100));
        let ledger = MemoryLedger::for_device(&hw);
        assert_eq!(ledger.budget(), budget);
    }

    #[test]
    fn reservation_guard_releases_on_drop_and_not_on_commit() {
        let ledger = MemoryLedger::new(100);
        {
            let g = ledger.try_reserve_guard(60).unwrap();
            assert_eq!(ledger.used(), 60);
            assert_eq!(g.bytes(), 60);
            assert!(ledger.try_reserve_guard(50).is_none(), "over budget");
        } // dropped without commit: released
        assert_eq!(ledger.used(), 0);
        let g = ledger.try_reserve_guard(70).unwrap();
        g.commit(); // ownership handed over: stays reserved
        assert_eq!(ledger.used(), 70);
        ledger.release(70);
        assert_eq!(ledger.used(), 0);
        // A panic while holding the guard must release too.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = ledger.try_reserve_guard(30).unwrap();
            panic!("solve failed");
        }));
        assert!(r.is_err());
        assert_eq!(ledger.used(), 0, "panic path must return the bytes");
    }

    #[test]
    fn headroom_fraction_tracks_reservations() {
        let ledger = MemoryLedger::new(200);
        assert_eq!(ledger.headroom_fraction(), 1.0);
        assert!(ledger.try_reserve(50));
        assert_eq!(ledger.headroom_fraction(), 0.75);
        assert!(ledger.try_reserve(150));
        assert_eq!(ledger.headroom_fraction(), 0.0);
        assert_eq!(MemoryLedger::new(0).headroom_fraction(), 0.0);
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let ledger = MemoryLedger::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if ledger.try_reserve(7) {
                            ledger.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(ledger.used(), 0);
    }
}
