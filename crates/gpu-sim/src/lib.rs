//! Bulk-synchronous GPU runtime simulator with a roofline cost model.
//!
//! This crate is the reproduction's stand-in for the paper's GPU execution
//! stack (KernelAbstractions.jl + GPUArrays.jl over CUDA/ROCm/oneAPI/
//! Metal). Kernels are written against a workgroup / thread / shared-memory
//! / barrier programming model ([`Workgroup`]) and executed on the host via
//! the vendored work-stealing thread pool (`rayon` shim), one task per
//! chunk of workgroups. Per-workgroup trace events land in grid-ordered
//! slots, so traces and numerics are bit-identical for any
//! `RAYON_NUM_THREADS`. Every launch is costed by an analytic
//! roofline model ([`cost`]) driven by the *actual* event counts of the
//! launch (grid/block geometry, flops, bytes, register and shared-memory
//! footprint) against the hardware descriptors of the paper's Table 2
//! ([`hw`]).
//!
//! Two execution modes exist ([`ExecMode`]): `Numeric` runs the real
//! arithmetic (used by all correctness work), `TraceOnly` replays only the
//! launch stream (used for paper-scale performance sweeps up to
//! n = 131072, where allocating n² elements on the host is pointless —
//! the event stream is identical by construction).

pub mod arena;
pub mod buffer;
pub mod cost;
pub mod device;
pub mod fault;
pub mod hw;
pub mod mem;
pub mod staging;
pub mod trace;
pub mod workgroup;

pub use arena::WorkgroupArena;
pub use buffer::GlobalBuffer;
pub use cost::{cost_of_launch, ExecGeometry, KernelClass, LaunchCost, LaunchSpec};
pub use device::{Device, ExecMode};
pub use fault::{DeviceFault, FaultChannel, FaultInjector, FaultKind, FaultPlan, FaultRecord};
pub use hw::{BackendKind, Fp16Mode, HardwareDescriptor, UnsupportedPrecision};
pub use mem::{MemoryLedger, Reservation};
pub use staging::{StagingArena, StagingTile};
pub use trace::{ClassTotals, LaunchRecord, Trace, TraceSummary};
pub use workgroup::{ThreadCtx, Workgroup};
