//! The simulated device: launch API, execution modes, and time accounting.

use crate::arena::WorkgroupArena;
use crate::buffer::GlobalBuffer;
use crate::cost::{cost_of_cpu_work, cost_of_launch, cost_of_transfer, KernelClass, LaunchSpec};
use crate::fault::{DeviceFault, FaultInjector, FaultKind, FaultRecord};
use crate::hw::{HardwareDescriptor, UnsupportedPrecision};
use crate::trace::{LaunchRecord, Trace, TraceSummary};
use crate::workgroup::Workgroup;
use parking_lot::Mutex;
use rayon::prelude::*;
use unisvd_scalar::{PrecisionKind, Real, Scalar};

/// Whether kernel bodies actually execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Run kernel bodies (real numerics) *and* account costs.
    Numeric,
    /// Account costs only; kernel bodies are skipped and no data exists.
    /// Used for paper-scale size sweeps (n up to 131072) where the event
    /// stream — launches, flops, bytes — is identical to a numeric run.
    TraceOnly,
}

/// A simulated GPU: a hardware descriptor plus a launch stream with
/// simulated timing. All launches on one device serialise on a single
/// stream, matching the paper's benchmarking setup (single stream, one
/// synchronisation at the end, §3.4).
pub struct Device {
    desc: HardwareDescriptor,
    mode: ExecMode,
    trace: Mutex<Trace>,
    race_check: bool,
    epoch: std::sync::atomic::AtomicU64,
    arena: WorkgroupArena,
    /// Built from `desc.fault`; `None` for the (default) fault-free
    /// descriptors, so the hot path pays one branch.
    faults: Option<FaultInjector>,
}

impl Device {
    /// Creates a device in the given execution mode.
    pub fn new(desc: HardwareDescriptor, mode: ExecMode) -> Self {
        let faults = desc
            .fault
            .clone()
            .filter(|p| p.is_active())
            .map(|p| FaultInjector::new(p, desc.name));
        Device {
            desc,
            mode,
            trace: Mutex::new(Trace::new(false)),
            race_check: false,
            epoch: std::sync::atomic::AtomicU64::new(0),
            arena: WorkgroupArena::default(),
            faults,
        }
    }

    /// The device's execution-context pool: register files, shared
    /// memory, and per-launch trace slots, reused across launches. See
    /// [`WorkgroupArena`]; exposed so tests and benchmarks can observe
    /// steady-state reuse.
    pub fn arena(&self) -> &WorkgroupArena {
        &self.arena
    }

    /// Enables the cross-workgroup write-write race detector: buffers
    /// allocated through this device get ownership tags and any two
    /// workgroups of one launch writing the same global element panic
    /// with a diagnostic. Costs one atomic op per global write — use in
    /// tests, not benchmarks.
    pub fn race_checked(mut self) -> Self {
        self.race_check = true;
        self
    }

    /// Numeric-mode device (the default for correctness work).
    pub fn numeric(desc: HardwareDescriptor) -> Self {
        Self::new(desc, ExecMode::Numeric)
    }

    /// Trace-only device for large-size performance sweeps.
    pub fn trace_only(desc: HardwareDescriptor) -> Self {
        Self::new(desc, ExecMode::TraceOnly)
    }

    /// Enables retention of every individual launch record.
    pub fn keep_records(self) -> Self {
        *self.trace.lock() = Trace::new(true);
        self
    }

    /// Hardware description.
    pub fn hw(&self) -> &HardwareDescriptor {
        &self.desc
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Capability check for a precision on this device.
    pub fn supports(&self, p: PrecisionKind) -> Result<(), UnsupportedPrecision> {
        self.desc.supports(p)
    }

    /// Launches a kernel. The body runs once per workgroup (in parallel on
    /// the host work-stealing pool) in [`ExecMode::Numeric`]; in trace-only
    /// mode only the cost is accounted. The body must confine
    /// cross-workgroup global writes to disjoint locations (see
    /// [`GlobalBuffer`]).
    ///
    /// Trace events are collected **per workgroup** (each workgroup writes
    /// only its own grid-ordered slot) and merged into one complete
    /// [`LaunchRecord`] pushed after the launch barrier, so every record's
    /// *contents* are identical for any thread count or schedule. Record
    /// *order* is launch-completion order: deterministic whenever a
    /// device's launches are issued from one thread (as everywhere in
    /// this workspace); concurrent launches on one shared device get
    /// complete but completion-ordered records.
    pub fn launch<R, F>(&self, spec: &LaunchSpec, body: F)
    where
        R: Real,
        F: Fn(&mut Workgroup<R>) + Sync,
    {
        let cost = cost_of_launch(&self.desc, spec);
        // Injection decision on the issuing thread, *before* the
        // workgroup fan-out — the fault schedule must not depend on how
        // the pool interleaves workgroups.
        let stall = match self.faults.as_ref().and_then(|f| f.on_launch()) {
            Some(FaultKind::Stall) => self.desc.fault.as_ref().map(|p| p.stall_factor),
            _ => None,
        };
        let mut rec = LaunchRecord {
            class: spec.class,
            label: spec.label,
            grid: spec.grid,
            block: spec.block,
            seconds: cost.seconds,
            flops: spec.flops,
            bytes: spec.bytes,
            occupancy: cost.occupancy,
            spill: cost.spill,
            wg_steps: Vec::new(),
        };
        if let Some(factor) = stall {
            // A stalled kernel burns wall-clock until the watchdog kills
            // it; the inflated cost shows up in the trace, and the latch
            // (drained by `take_fault`) marks the results untrustworthy.
            rec.seconds *= factor.max(1.0);
        }
        let mut steps_slots: Option<Vec<u32>> = None;
        if self.mode == ExecMode::Numeric {
            // Numeric geometry may differ from the costed geometry for
            // purely computational parameters (SPLITK); see `ExecGeometry`.
            let (block, rpt, smem) = match spec.exec {
                Some(e) => (e.block, e.regs_per_thread, e.smem_elems),
                None => (spec.block, spec.regs_per_thread, spec.smem_elems),
            };
            let epoch = self
                .epoch
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                + 1;
            let race = self.race_check;
            // Workgroup contexts and the grid-sized slot buffer come from
            // the device arena — reset, not reallocated, in steady state.
            let mut wg_steps = self.arena.lease_steps(spec.grid);
            if spec.grid == 1 {
                // Avoid thread-pool overhead for the (frequent) 1-block
                // panel kernels.
                if race {
                    crate::buffer::set_race_ctx(epoch, 0, true);
                }
                let mut wg = self.arena.lease::<R>(0, block, rpt, smem);
                body(&mut wg);
                wg_steps[0] = wg.steps() as u32;
                if race {
                    crate::buffer::set_race_ctx(0, 0, false);
                }
            } else {
                wg_steps.par_iter_mut().enumerate().for_each(|(g, slot)| {
                    if race {
                        crate::buffer::set_race_ctx(epoch, g as u64, true);
                    }
                    let mut wg = self.arena.lease::<R>(g, block, rpt, smem);
                    body(&mut wg);
                    *slot = wg.steps() as u32;
                    if race {
                        crate::buffer::set_race_ctx(0, 0, false);
                    }
                });
            }
            steps_slots = Some(wg_steps);
        }
        // One trace lock for the record push. When records are retained
        // (tests/ablations) the slot buffer moves into the record; on the
        // common aggregate-only path it returns to the arena and the
        // record carries no per-workgroup payload (nothing could observe
        // it — records are dropped on push).
        let mut trace = self.trace.lock();
        if let Some(slots) = steps_slots {
            if trace.keeps_records() {
                rec.wg_steps = slots;
            } else {
                self.arena.return_steps(slots);
            }
        }
        trace.push(rec);
    }

    /// Accounts a host↔device transfer of `bytes` (hybrid baselines).
    pub fn transfer(&self, label: &'static str, bytes: f64) {
        let seconds = cost_of_transfer(&self.desc, bytes);
        self.trace.lock().push(LaunchRecord {
            class: KernelClass::Transfer,
            label,
            grid: 0,
            block: 0,
            seconds,
            flops: 0.0,
            bytes,
            occupancy: 0.0,
            spill: 1.0,
            wg_steps: Vec::new(),
        });
    }

    /// Accounts host CPU work of `flops` at `efficiency` (hybrid baselines
    /// and the stage-3 CPU solver).
    pub fn cpu_work(&self, class: KernelClass, label: &'static str, flops: f64, efficiency: f64) {
        let seconds = cost_of_cpu_work(&self.desc, flops, efficiency);
        self.trace.lock().push(LaunchRecord {
            class,
            label,
            grid: 0,
            block: 0,
            seconds,
            flops,
            bytes: 0.0,
            occupancy: 0.0,
            spill: 1.0,
            wg_steps: Vec::new(),
        });
    }

    /// Allocates a device buffer from host data (numeric mode) or a
    /// zero-length placeholder (trace mode — no memory is touched).
    pub fn upload<T: Scalar>(&self, host: &[T]) -> GlobalBuffer<T> {
        let buf = match self.mode {
            ExecMode::Numeric => {
                let buf = GlobalBuffer::from_vec(host.to_vec());
                self.corrupt_transfer(&buf);
                buf
            }
            ExecMode::TraceOnly => GlobalBuffer::from_vec(Vec::new()),
        };
        if self.race_check {
            buf.with_race_tags()
        } else {
            buf
        }
    }

    /// Fault-injection hook for host→device transfers: when the
    /// descriptor's [`FaultPlan`](crate::FaultPlan) fires on this upload
    /// event, one element of `buf` is poisoned with NaN — the simulated
    /// bit flip. The latch (drained by [`take_fault`](Self::take_fault))
    /// is what lets the execution layer classify the garbage result.
    fn corrupt_transfer<T: Scalar>(&self, buf: &GlobalBuffer<T>) {
        if let Some(inj) = &self.faults {
            if let Some(idx) = inj.on_upload(buf.len()) {
                buf.write(idx, T::from_f64(f64::NAN));
            }
        }
    }

    /// Re-uploads host data into an existing device buffer (numeric mode)
    /// — the amortized path of a reusable plan/execute workflow: no
    /// allocation, the previous contents are overwritten in place. In
    /// trace-only mode this is a no-op (there is no data).
    ///
    /// # Panics
    /// In numeric mode, if `host.len() != buf.len()`.
    pub fn upload_into<T: Scalar>(&self, host: &[T], buf: &GlobalBuffer<T>) {
        if self.mode == ExecMode::Numeric {
            buf.copy_from_host(host);
            self.corrupt_transfer(buf);
        }
    }

    /// Allocates a zero-filled device buffer of `len` elements (numeric
    /// mode) or a placeholder (trace mode).
    pub fn alloc<T: Scalar>(&self, len: usize) -> GlobalBuffer<T> {
        let buf = match self.mode {
            ExecMode::Numeric => GlobalBuffer::filled(len, T::zero()),
            ExecMode::TraceOnly => GlobalBuffer::from_vec(Vec::new()),
        };
        if self.race_check {
            buf.with_race_tags()
        } else {
            buf
        }
    }

    /// Summary of all accounted events since the last reset.
    pub fn summary(&self) -> TraceSummary {
        self.trace.lock().summary()
    }

    /// [`summary`](Self::summary) into an existing [`TraceSummary`],
    /// reusing its storage (no allocation once warmed).
    pub fn summary_into(&self, out: &mut TraceSummary) {
        self.trace.lock().summary_into(out);
    }

    /// Retained records (only if [`Device::keep_records`] was used).
    pub fn records(&self) -> Vec<LaunchRecord> {
        self.trace.lock().records().to_vec()
    }

    /// Total simulated seconds on this device's stream.
    pub fn elapsed_seconds(&self) -> f64 {
        self.summary().total_seconds()
    }

    /// Clears the trace.
    pub fn reset(&self) {
        self.trace.lock().reset();
    }

    /// Drains the fault latch: the worst fault injected since the last
    /// call ([`FaultKind::Death`] dominates), or `None` on a clean run.
    /// The execution layer calls this once per solve to decide whether
    /// the result is servable; faults are *latched*, never thrown, so a
    /// corrupted solve completes and is then classified.
    pub fn take_fault(&self) -> Option<DeviceFault> {
        self.faults.as_ref().and_then(|f| f.take())
    }

    /// Every fault injected on this device so far, in injection order —
    /// the schedule the determinism suite pins across thread counts.
    /// Unlike [`take_fault`](Self::take_fault) this never drains.
    pub fn fault_history(&self) -> Vec<FaultRecord> {
        self.faults
            .as_ref()
            .map(|f| f.history())
            .unwrap_or_default()
    }

    /// Whether the injected [`FaultKind::Death`] has fired (and the
    /// device has not been [`revived`](Self::revive_faults)).
    pub fn is_fault_dead(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.is_dead())
    }

    /// Clears an injected device death and cancels further scheduled
    /// death — the simulated power-cycle behind
    /// `SvdFleet::revive_device`. Transient fault rates stay active.
    pub fn revive_faults(&self) {
        if let Some(f) = &self.faults {
            f.revive();
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Device({}, {:?})", self.desc.name, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::h100;

    fn spec(grid: usize, block: usize) -> LaunchSpec {
        let mut s = LaunchSpec::new(KernelClass::Other, "test", grid, block);
        s.flops = 1000.0;
        s.bytes = 100.0;
        s
    }

    #[test]
    fn numeric_launch_runs_all_workgroups() {
        let dev = Device::numeric(h100());
        let buf = dev.upload(&vec![0.0f64; 64]);
        dev.launch::<f64, _>(&spec(8, 8), |wg| {
            let g = wg.group_id();
            wg.step(|t| buf.write(g * 8 + t.tid, (g * 8 + t.tid) as f64));
        });
        let v = buf.to_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as f64));
        assert_eq!(dev.summary().total_launches(), 1);
        assert!(dev.elapsed_seconds() > 0.0);
    }

    #[test]
    fn trace_only_skips_bodies_but_accounts_time() {
        let dev = Device::trace_only(h100());
        let executed = std::sync::atomic::AtomicBool::new(false);
        dev.launch::<f32, _>(&spec(4, 32), |_wg| {
            executed.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        assert!(!executed.load(std::sync::atomic::Ordering::SeqCst));
        assert_eq!(dev.summary().total_launches(), 1);
        assert!(dev.elapsed_seconds() >= h100().launch_overhead_s);
        // Upload in trace mode allocates nothing.
        let b = dev.upload(&[1.0f64, 2.0]);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn transfers_and_cpu_work_accumulate() {
        let dev = Device::numeric(h100());
        dev.transfer("h2d", 1e6);
        dev.cpu_work(KernelClass::BidiagonalSvd, "bdsqr", 1e6, 0.2);
        let s = dev.summary();
        assert_eq!(s.launches_of(KernelClass::Transfer), 1);
        assert_eq!(s.launches_of(KernelClass::BidiagonalSvd), 1);
        assert!(s.total_seconds() > 0.0);
        dev.reset();
        assert_eq!(dev.summary().total_launches(), 0);
    }

    #[test]
    fn upload_into_reuses_buffer_in_numeric_and_noops_in_trace() {
        let dev = Device::numeric(h100());
        let buf = dev.alloc::<f32>(4);
        dev.upload_into(&[1.0f32, 2.0, 3.0, 4.0], &buf);
        assert_eq!(buf.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
        let tdev = Device::trace_only(h100());
        let tbuf = tdev.alloc::<f32>(4);
        assert!(tbuf.is_empty());
        tdev.upload_into(&[1.0f32; 16], &tbuf); // no data, no panic
    }

    #[test]
    fn keep_records_retains_individual_launches() {
        let dev = Device::numeric(h100()).keep_records();
        dev.launch::<f64, _>(&spec(1, 16), |_| {});
        dev.launch::<f64, _>(&spec(2, 16), |_| {});
        let recs = dev.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].grid, 2);
    }

    #[test]
    fn wg_steps_merged_in_grid_order() {
        // Workgroup g runs g+1 supersteps; the record must list them by
        // grid index regardless of how the pool interleaved execution.
        let dev = Device::numeric(h100()).keep_records();
        dev.launch::<f64, _>(&spec(6, 4), |wg| {
            for _ in 0..=wg.group_id() {
                wg.step(|_| {});
            }
        });
        let recs = dev.records();
        assert_eq!(recs[0].wg_steps, vec![1, 2, 3, 4, 5, 6]);
        // Trace-only launches carry no per-workgroup data.
        let tdev = Device::trace_only(h100()).keep_records();
        tdev.launch::<f64, _>(&spec(6, 4), |_| {});
        assert!(tdev.records()[0].wg_steps.is_empty());
    }
}
